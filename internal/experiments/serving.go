package experiments

import (
	"fmt"
	"io"
	"os"

	"deepplan/internal/costmodel"
	"deepplan/internal/dnn"
	"deepplan/internal/experiments/runner"
	"deepplan/internal/metrics"
	"deepplan/internal/serving"
	"deepplan/internal/sim"
	"deepplan/internal/topology"
	"deepplan/internal/trace"
	"deepplan/internal/workload"
)

// servingPolicies are the legends of Figures 13-15.
var servingPolicies = []serving.Policy{
	serving.PolicyPipeSwitch, serving.PolicyDHA, serving.PolicyPTDHA,
}

// runServing deploys count instances of one model, warms up, and replays
// the request sequence. rec and telemetry attach observation-only
// instrumentation to this one run (both off for plain sweep points).
func runServing(policy serving.Policy, modelName string, count int, reqs []workload.Request, slo sim.Duration, rec *trace.Recorder, telemetry bool) (*serving.Report, error) {
	srv, err := serving.New(serving.Config{
		Topo:      topology.P38xlarge(),
		Cost:      costmodel.Default(),
		Policy:    policy,
		SLO:       slo,
		Trace:     rec,
		Telemetry: telemetry,
	})
	if err != nil {
		return nil, err
	}
	m, err := dnn.ByName(modelName)
	if err != nil {
		return nil, err
	}
	if err := srv.Deploy(m, count); err != nil {
		return nil, err
	}
	srv.Warmup()
	return srv.Run(reqs)
}

// writeTraceFile exports a recorder as Chrome trace JSON at path.
func writeTraceFile(path string, rec *trace.Recorder, meta map[string]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := trace.WriteChrome(f, rec, meta)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// printTelemetry renders a telemetry snapshot as a per-window table.
func printTelemetry(w io.Writer, stats []metrics.TelemetryStat) {
	fmt.Fprintf(w, "%-8s %9s %7s %7s %7s %7s %7s\n",
		"minute", "requests", "cold%", "queue", "busy%", "evict", "reloc")
	for _, s := range stats {
		if s.Requests == 0 && s.Evictions == 0 {
			continue
		}
		fmt.Fprintf(w, "%-8.0f %9d %6.1f%% %7.2f %6.1f%% %7d %7d\n",
			s.Start.Seconds()/60, s.Requests, s.ColdRatio*100,
			s.MeanQueueDepth, s.BusyFraction*100, s.Evictions, s.Relocations)
	}
}

// Figure13 sweeps the number of BERT-Base instances at 100 requests/second
// and reports p99 latency, goodput (SLO 100 ms), and cold-start counts.
func Figure13(w io.Writer, opts Options) error {
	header(w, "Figure 13: serving BERT-Base, 100 rps Poisson, SLO 100 ms")
	concurrencies := []int{100, 120, 140, 160, 180, 200, 220}
	requests := 1000
	if opts.Quick {
		concurrencies = []int{120, 160, 200}
		requests = 300
	}
	// Each (policy, concurrency) point is an independent simulation, so the
	// sweep fans out across opts.Workers and prints in sweep order.
	type point struct {
		pol  serving.Policy
		conc int
		rep  *serving.Report
	}
	points := make([]point, 0, len(servingPolicies)*len(concurrencies))
	for _, pol := range servingPolicies {
		for _, conc := range concurrencies {
			points = append(points, point{pol: pol, conc: conc})
		}
	}
	// The representative configuration for -trace/-telemetry: PT+DHA at the
	// sweep's highest concurrency, where eviction and cold-start pressure
	// peak. Only this point carries a recorder — points run concurrently and
	// recorders are not shared.
	tracedIdx := -1
	var rec *trace.Recorder
	if opts.TracePath != "" || opts.Telemetry {
		for i := range points {
			if points[i].pol == serving.PolicyPTDHA &&
				points[i].conc == concurrencies[len(concurrencies)-1] {
				tracedIdx = i
			}
		}
		if opts.TracePath != "" {
			rec = trace.New()
		}
	}
	err := runner.ForEach(opts.Workers, len(points), func(i int) error {
		p := &points[i]
		var pr *trace.Recorder
		if i == tracedIdx {
			pr = rec
		}
		reqs := workload.Poisson(42, 100, requests, p.conc)
		rep, err := runServing(p.pol, "bert-base", p.conc, reqs, 100*sim.Millisecond,
			pr, i == tracedIdx && opts.Telemetry)
		if err != nil {
			return err
		}
		p.rep = rep
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %6s %10s %9s %11s %9s\n",
		"policy", "#inst", "p99(ms)", "goodput", "cold-starts", "capacity")
	for i, p := range points {
		fmt.Fprintf(w, "%-12s %6d %10.1f %8.1f%% %11d %9d\n",
			p.pol, p.conc, ms(p.rep.P99), p.rep.Goodput*100, p.rep.ColdStarts, p.rep.WarmCapacity)
		if (i+1)%len(concurrencies) == 0 {
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "paper: PipeSwitch's p99 blows up from 120 instances; DeepPlan (DHA) holds to 160;")
	fmt.Fprintln(w, "PT+DHA serves 180 within SLO (1.84x goodput at 180); DeepPlan also fits ~24 more")
	fmt.Fprintln(w, "instances because embeddings stay in host memory")
	if tracedIdx >= 0 {
		p := &points[tracedIdx]
		if opts.Telemetry {
			fmt.Fprintf(w, "\nper-window telemetry (pt+dha, %d instances):\n", p.conc)
			printTelemetry(w, p.rep.Telemetry)
		}
		if opts.TracePath != "" {
			if err := writeTraceFile(opts.TracePath, rec, map[string]string{
				"experiment": "fig13", "policy": "pt+dha",
				"instances": fmt.Sprint(p.conc),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Figure14 repeats the sweep for BERT-Large (30 rps) and GPT-2 (90 rps),
// reporting p99 only, as in the paper.
func Figure14(w io.Writer, opts Options) error {
	header(w, "Figure 14: 99% latency for BERT-Large (30 rps) and GPT-2 (90 rps)")
	requests := 1000
	if opts.Quick {
		requests = 300
	}
	cases := []struct {
		model string
		rate  float64
		concs []int
	}{
		{"bert-large", 30, []int{20, 30, 40, 50, 60}},
		{"gpt2", 90, []int{40, 60, 80, 100, 120}},
	}
	// Flatten the (model, policy, concurrency) sweep into independent
	// simulation points, fan out across opts.Workers, print in sweep order.
	type point struct {
		model string
		rate  float64
		pol   serving.Policy
		conc  int
		rep   *serving.Report
	}
	var points []point
	for _, c := range cases {
		concs := c.concs
		if opts.Quick {
			concs = concs[1:4]
		}
		for _, pol := range servingPolicies {
			for _, conc := range concs {
				points = append(points, point{model: c.model, rate: c.rate, pol: pol, conc: conc})
			}
		}
	}
	err := runner.ForEach(opts.Workers, len(points), func(i int) error {
		p := &points[i]
		reqs := workload.Poisson(7, p.rate, requests, p.conc)
		rep, err := runServing(p.pol, p.model, p.conc, reqs, 100*sim.Millisecond, nil, false)
		if err != nil {
			return err
		}
		p.rep = rep
		return nil
	})
	if err != nil {
		return err
	}
	next := 0
	for _, c := range cases {
		concs := c.concs
		if opts.Quick {
			concs = concs[1:4]
		}
		fmt.Fprintf(w, "\n%s @ %.0f rps:\n%-12s", c.model, c.rate, "policy")
		for _, conc := range concs {
			fmt.Fprintf(w, " %9d", conc)
		}
		fmt.Fprintln(w)
		for _, pol := range servingPolicies {
			fmt.Fprintf(w, "%-12s", pol)
			for range concs {
				fmt.Fprintf(w, " %7.0fms", ms(points[next].rep.P99))
				next++
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "\npaper: DeepPlan improves tail latency significantly over PipeSwitch for both")
	fmt.Fprintln(w, "models; for GPT-2 the DHA and PT+DHA curves nearly coincide")
	return nil
}

// Figure15 replays a 3-hour MAF-like trace at 150 rps over a mixed
// deployment of BERT-Base, RoBERTa-Base, and GPT-2 at 4:4:1.
func Figure15(w io.Writer, opts Options) error {
	header(w, "Figure 15: MAF-like trace replay, mixed models 4:4:1, 150 rps, SLO 100 ms")
	duration := 3 * 3600 * sim.Second
	rate := 150.0
	inst := [3]int{48, 48, 12} // BERT-Base : RoBERTa-Base : GPT-2
	if opts.Quick {
		// 3 simulated minutes (~27k requests) keeps the replay meaningful
		// while fitting the quick registry — run several times per test
		// suite, including under -race — in seconds, not minutes.
		duration = 3 * 60 * sim.Second
	}
	total := inst[0] + inst[1] + inst[2]
	tr, err := workload.MAFLike(workload.TraceSpec{
		Seed: 2023, Duration: duration, TotalRate: rate, NumFunctions: total,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "trace: %d requests over %.0f min (avg %.1f rps), %d instances\n\n",
		len(tr.Requests), duration.Minutes(), float64(len(tr.Requests))/duration.Seconds(), total)

	fmt.Fprintf(w, "%-12s %9s %9s %9s %11s %10s\n",
		"policy", "p50(ms)", "p99(ms)", "goodput", "cold-starts", "worst-min")
	// -trace/-telemetry observe the PT+DHA replay. Tracing is
	// observation-only, so attaching the recorder to the real run (rather
	// than a rerun) leaves the table byte-identical.
	var rec *trace.Recorder
	var telStats []metrics.TelemetryStat
	for _, pol := range servingPolicies {
		instrument := pol == serving.PolicyPTDHA
		var pr *trace.Recorder
		if instrument && opts.TracePath != "" {
			pr = trace.New()
			rec = pr
		}
		srv, err := serving.New(serving.Config{
			Topo:      topology.P38xlarge(),
			Cost:      costmodel.Default(),
			Policy:    pol,
			SLO:       100 * sim.Millisecond,
			Trace:     pr,
			Telemetry: instrument && opts.Telemetry,
		})
		if err != nil {
			return err
		}
		for i, name := range []string{"bert-base", "roberta-base", "gpt2"} {
			m, err := dnn.ByName(name)
			if err != nil {
				return err
			}
			if err := srv.Deploy(m, inst[i]); err != nil {
				return err
			}
		}
		srv.Warmup()
		rep, err := srv.Run(tr.Requests)
		if err != nil {
			return err
		}
		// Worst per-minute p99 across the trace (the latency spikes the
		// paper notes at minutes 9 and 67).
		var worst sim.Duration
		for _, ws := range rep.PerWindow {
			if ws.Requests > 0 && ws.P99 > worst {
				worst = ws.P99
			}
		}
		fmt.Fprintf(w, "%-12s %9.1f %9.1f %8.1f%% %11d %8.0fms\n",
			pol, ms(rep.P50), ms(rep.P99), rep.Goodput*100, rep.ColdStarts, ms(worst))
		if instrument && opts.Telemetry {
			telStats = rep.Telemetry
		}
	}
	fmt.Fprintln(w, "\npaper: DeepPlan's two designs reach 98-99% goodput where PipeSwitch ranges")
	fmt.Fprintln(w, "81-98%, with occasional non-persistent latency spikes in individual minutes")
	if opts.Telemetry {
		fmt.Fprintln(w, "\nper-window telemetry (pt+dha):")
		printTelemetry(w, telStats)
	}
	if opts.TracePath != "" {
		if err := writeTraceFile(opts.TracePath, rec, map[string]string{
			"experiment": "fig15", "policy": "pt+dha",
		}); err != nil {
			return err
		}
	}
	return nil
}
