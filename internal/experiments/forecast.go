package experiments

import (
	"fmt"
	"io"

	"deepplan/internal/cluster"
	"deepplan/internal/dnn"
	"deepplan/internal/experiments/runner"
	"deepplan/internal/sim"
	"deepplan/internal/workload"
)

// perReplicaDollarsPerHour prices one always-on BERT-Base replica: the
// p3.8xlarge's on-demand rate spread over its ~100-instance warm capacity.
// Only the ratio between the two policies matters for the experiment; the
// absolute number just makes the column legible.
const perReplicaDollarsPerHour = 12.24 / 100

// forecastParams is one fig-forecast scenario: a spiky MAF-like trace with
// a shared burst schedule, served by a small affinity-routed cluster whose
// replica controller starts from a one-replica floor.
type forecastParams struct {
	nodes      int
	model      string
	replicas   int
	totalRate  float64
	duration   sim.Duration
	burstEvery sim.Duration
	burstLen   sim.Duration
	interval   sim.Duration
}

func defaultForecastParams(quick bool) forecastParams {
	p := forecastParams{
		nodes:      2,
		model:      "gpt2",
		replicas:   32,
		totalRate:  110,
		duration:   150 * sim.Second,
		burstEvery: 15 * sim.Second,
		burstLen:   3 * sim.Second,
		interval:   500 * sim.Millisecond,
	}
	if quick {
		p.totalRate = 70
		p.duration = 75 * sim.Second
	}
	return p
}

// forecastWorkload generates the controlled spiky trace: every function is
// Spiky and every burst is phase-aligned, so "when is the next spike" has
// one true answer the forecaster can be graded against.
func (p forecastParams) workload() ([]cluster.Request, error) {
	tr, err := workload.MAFLike(workload.TraceSpec{
		Seed:         77,
		Duration:     p.duration,
		TotalRate:    p.totalRate,
		NumFunctions: p.replicas,
		Mix:          map[workload.FunctionClass]float64{workload.Spiky: 1},
		BurstEvery:   p.burstEvery,
		BurstLen:     p.burstLen,
	})
	if err != nil {
		return nil, err
	}
	name, err := dnn.ByName(p.model)
	if err != nil {
		return nil, err
	}
	return clusterWorkload(name.Name, tr.Requests), nil
}

// runForecastPolicy replays the trace under one controller policy.
func runForecastPolicy(p forecastParams, policy cluster.AutoscalePolicy,
	reqs []cluster.Request, parallel bool) (*cluster.Report, error) {
	c, err := cluster.New(cluster.Config{
		Nodes:    p.nodes,
		Route:    cluster.RouteAffinity,
		SLO:      100 * sim.Millisecond,
		Parallel: parallel,
		Autoscale: cluster.AutoscaleConfig{
			Enabled:  true,
			Interval: p.interval,
			Policy:   policy,
			// Four buckets of lead time so prewarm loads finish before the
			// burst's arrivals, and a little utilization headroom so the
			// forecasted peak maps to one spare replica rather than none.
			Horizon:    2 * sim.Second,
			TargetUtil: 0.5,
		},
	})
	if err != nil {
		return nil, err
	}
	m, err := dnn.ByName(p.model)
	if err != nil {
		return nil, err
	}
	if err := c.Deploy(m, p.replicas); err != nil {
		return nil, err
	}
	// No warm-up: every replica starts cold, as in a serverless fleet. The
	// reactive controller therefore activates *cold* replicas mid-burst,
	// while the predictive one prewarms them before arrivals land.
	return c.Run(reqs)
}

// replicaSeconds sums the billed active-replica integral across models.
func replicaSeconds(rep *cluster.Report) float64 {
	s := 0.0
	for _, rs := range rep.Replicas {
		s += rs.ActiveSeconds
	}
	return s
}

// FigForecast compares the reactive replica controller against the
// forecast-driven predictive one on a workload built to reward foresight:
// every function is Spiky with one shared, strictly periodic burst
// schedule. The reactive controller only widens the model after a burst
// has already queued requests behind cold replicas; the predictive one
// detects the cadence from arrival history, prewarms replicas just before
// each burst (waking slept instances with a single direct-host-access
// load), and puts them back to sleep in the idle gaps — so it should cut
// the cold-start tail without buying more replica-seconds.
func FigForecast(w io.Writer, opts Options) error {
	header(w, "Predictive actuation: reactive vs forecast-driven autoscaling")
	p := defaultForecastParams(opts.Quick)
	reqs, err := p.workload()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "spiky MAF-like trace: %d functions, %.0f rps average, bursts every %.0fs lasting %.0fs\n",
		p.replicas, p.totalRate, p.burstEvery.Seconds(), p.burstLen.Seconds())
	fmt.Fprintf(w, "%d nodes, affinity routing, %d replicas, autoscale tick %.1fs, floor 1\n\n",
		p.nodes, p.replicas, p.interval.Seconds())

	policies := []cluster.AutoscalePolicy{cluster.AutoscaleReactive, cluster.AutoscalePredictive}
	if opts.AutoscalePolicy != "" {
		pol, err := cluster.ParseAutoscalePolicy(opts.AutoscalePolicy)
		if err != nil {
			return err
		}
		policies = []cluster.AutoscalePolicy{pol}
	}
	reports := make([]*cluster.Report, len(policies))
	err = runner.ForEach(opts.Workers, len(policies), func(i int) error {
		rep, err := runForecastPolicy(p, policies[i], reqs, opts.ParallelSim)
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%-11s %12s %6s %5s %8s %10s %7s\n",
		"policy", "cold-p99(ms)", "colds", "shed", "p99(ms)", "replica-s", "$")
	for i, rep := range reports {
		fmt.Fprintf(w, "%-11s %12.1f %6d %5d %8.1f %10.0f %7.4f\n",
			policies[i], ms(rep.ColdP99), rep.ColdStarts, rep.Shed, ms(rep.P99),
			replicaSeconds(rep), replicaSeconds(rep)/3600*perReplicaDollarsPerHour)
	}
	for i, rep := range reports {
		if policies[i] != cluster.AutoscalePredictive {
			continue
		}
		fmt.Fprintf(w, "\npredictive actuations: %d prewarms, %d wakes, %d sleeps, %d swap-ins\n",
			rep.Prewarms, rep.Wakes, rep.Sleeps, rep.SwapIns)
	}
	return nil
}
