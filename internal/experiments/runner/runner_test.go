package runner

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1} {
		if got := Workers(n); got != want {
			t.Fatalf("Workers(%d) = %d, want GOMAXPROCS %d", n, got, want)
		}
	}
}

// Execute must emit unit output in unit order regardless of completion
// order, for any pool size.
func TestExecuteOrdersOutput(t *testing.T) {
	const n = 16
	units := make([]Unit, n)
	for i := 0; i < n; i++ {
		i := i
		units[i] = Unit{Label: fmt.Sprint(i), Run: func(w io.Writer) error {
			// Later units sleep less, so under parallelism they tend to
			// complete before earlier ones.
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			fmt.Fprintf(w, "unit %02d line a\nunit %02d line b\n", i, i)
			return nil
		}}
	}
	var want bytes.Buffer
	if err := Execute(&want, 1, units); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 32} {
		var got bytes.Buffer
		if err := Execute(&got, workers, units); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("workers=%d output differs from serial:\n%q\nvs\n%q",
				workers, got.String(), want.String())
		}
	}
}

// On failure, Execute flushes everything a serial run would have printed —
// all earlier units plus the failing unit's partial output — and returns the
// lowest-indexed error.
func TestExecuteErrorSemantics(t *testing.T) {
	errBoom := errors.New("boom")
	units := []Unit{
		{Label: "ok0", Run: func(w io.Writer) error { fmt.Fprintln(w, "zero"); return nil }},
		{Label: "bad1", Run: func(w io.Writer) error { fmt.Fprintln(w, "partial"); return errBoom }},
		{Label: "bad2", Run: func(w io.Writer) error { return errors.New("later error") }},
		{Label: "ok3", Run: func(w io.Writer) error { fmt.Fprintln(w, "discarded"); return nil }},
	}
	for _, workers := range []int{1, 4} {
		var got bytes.Buffer
		err := Execute(&got, workers, units)
		if !errors.Is(err, errBoom) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, errBoom)
		}
		if want := "zero\npartial\n"; got.String() != want {
			t.Fatalf("workers=%d: output %q, want %q", workers, got.String(), want)
		}
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		const n = 100
		var hits [n]int32
		if err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachReturnsLowestIndexedError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "fail-3") {
			t.Fatalf("workers=%d: err = %v, want fail-3", workers, err)
		}
	}
}

func TestForEachZeroUnits(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Execute(&buf, 4, nil); err != nil || buf.Len() != 0 {
		t.Fatalf("Execute on no units: err=%v len=%d", err, buf.Len())
	}
}
