// Package runner executes independent simulation units across a bounded
// worker pool while keeping output byte-identical to a serial run.
//
// Every unit writes into a private buffer; buffers are flushed to the
// caller's writer in unit order, so the interleaving of concurrent units
// never leaks into the output. The determinism guarantee rests on the units
// themselves being self-contained: in this repository every experiment and
// every sweep point builds its own sim.Simulator, topology, and workload, so
// a unit's bytes are a pure function of its inputs and parallelism exists
// only *between* simulations, never inside one.
package runner

import (
	"bytes"
	"io"
	"runtime"
	"sync"
)

// Workers resolves a requested pool size: n >= 1 is used as given; any other
// value means one worker per available CPU (GOMAXPROCS).
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Unit is one independent piece of work producing buffered output.
type Unit struct {
	Label string // diagnostic label, e.g. an experiment ID
	Run   func(w io.Writer) error
}

// Execute runs units over a pool of workers goroutines (resolved by
// Workers). Output is flushed to w strictly in unit order. On failure the
// error of the lowest-indexed failed unit is returned after flushing every
// earlier unit's output plus the failed unit's partial output — exactly the
// bytes a serial run would have emitted before stopping. Units after the
// failed one still run but their output is discarded.
func Execute(w io.Writer, workers int, units []Unit) error {
	bufs := make([]bytes.Buffer, len(units))
	errs := make([]error, len(units))
	forEach(Workers(workers), len(units), func(i int) {
		errs[i] = units[i].Run(&bufs[i])
	})
	for i := range units {
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// ForEach runs fn(0), …, fn(n-1) across a bounded pool of workers goroutines
// (resolved by Workers) and returns the error of the lowest-indexed failed
// call — the same error a serial loop would have stopped on. With one worker
// it degenerates to a plain loop on the calling goroutine, stopping at the
// first error.
func ForEach(workers, n int, fn func(i int) error) error {
	if workers = Workers(workers); workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	forEach(workers, n, func(i int) {
		errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forEach fans indices out to workers goroutines and waits for all of them.
func forEach(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
