package experiments

import (
	"bytes"
	"testing"

	"deepplan/internal/cluster"
)

// TestFigForecastPredictiveWinsColdTail pins fig-forecast's headline
// claim: on the periodic spiky trace the predictive controller beats the
// reactive one on cold-start p99 while billing no more replica-seconds.
func TestFigForecastPredictiveWinsColdTail(t *testing.T) {
	p := defaultForecastParams(true)
	reqs, err := p.workload()
	if err != nil {
		t.Fatal(err)
	}
	reactive, err := runForecastPolicy(p, cluster.AutoscaleReactive, reqs, false)
	if err != nil {
		t.Fatal(err)
	}
	predictive, err := runForecastPolicy(p, cluster.AutoscalePredictive, reqs, false)
	if err != nil {
		t.Fatal(err)
	}
	if predictive.Prewarms == 0 || predictive.Sleeps == 0 {
		t.Fatalf("predictive run did not actuate the lifecycle: %d prewarms, %d sleeps",
			predictive.Prewarms, predictive.Sleeps)
	}
	if reactive.Prewarms != 0 || reactive.Sleeps != 0 {
		t.Fatalf("reactive run actuated the predictive lifecycle: %d prewarms, %d sleeps",
			reactive.Prewarms, reactive.Sleeps)
	}
	if predictive.ColdP99 >= reactive.ColdP99 {
		t.Fatalf("predictive cold p99 %v not below reactive %v",
			predictive.ColdP99, reactive.ColdP99)
	}
	if rp, rr := replicaSeconds(predictive), replicaSeconds(reactive); rp > rr {
		t.Fatalf("predictive billed %v replica-seconds, more than reactive's %v", rp, rr)
	}
}

// TestFigForecastByteIdenticalParallelSim: the experiment's stdout must
// not depend on the simulator execution mode.
func TestFigForecastByteIdenticalParallelSim(t *testing.T) {
	var serial, parallel bytes.Buffer
	if err := FigForecast(&serial, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	if err := FigForecast(&parallel, Options{Quick: true, ParallelSim: true}); err != nil {
		t.Fatal(err)
	}
	if serial.Len() == 0 {
		t.Fatal("empty experiment output")
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("fig-forecast output differs between serial and -parallel-sim:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

// TestFigForecastPinnedPolicy: Options.AutoscalePolicy restricts the table
// to one controller and rejects unknown spellings.
func TestFigForecastPinnedPolicy(t *testing.T) {
	var out bytes.Buffer
	if err := FigForecast(&out, Options{Quick: true, AutoscalePolicy: "predictive"}); err != nil {
		t.Fatal(err)
	}
	if s := out.String(); !bytes.Contains(out.Bytes(), []byte("predictive")) ||
		bytes.Contains(out.Bytes(), []byte("\nreactive")) {
		t.Fatalf("pinned-policy output wrong:\n%s", s)
	}
	if err := FigForecast(&out, Options{Quick: true, AutoscalePolicy: "oracle"}); err == nil {
		t.Fatal("unknown autoscale policy accepted")
	}
}
