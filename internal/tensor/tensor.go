// Package tensor is a minimal float32 tensor runtime: the small slice of a
// DL framework the functional tests need to run real forward passes through
// tiny transformer models.
//
// The paper's system executes on libTorch; this reproduction's *timing* is
// simulated, but the claim that an execution plan changes only *where
// weights live* — never *what the model computes* — is a functional
// property. Package forward uses these ops to prove it: a model executed
// with all weights "on device", with embeddings host-resident (DHA), or
// partitioned across GPUs produces bit-identical outputs.
//
// Everything is straightforward row-major float32 with no SIMD tricks:
// models under test are tiny, so clarity wins.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 matrix ([rows, cols]); vectors are
// 1 x n.
type Tensor struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zero tensor of the given shape.
func New(rows, cols int) *Tensor {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromData wraps data as a rows x cols tensor (no copy).
func FromData(rows, cols int, data []float32) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: %d values for %dx%d", len(data), rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Rows, t.Cols)
	copy(c.Data, t.Data)
	return c
}

// At returns element (i, j).
func (t *Tensor) At(i, j int) float32 { return t.Data[i*t.Cols+j] }

// Set assigns element (i, j).
func (t *Tensor) Set(i, j int, v float32) { t.Data[i*t.Cols+j] = v }

// Equal reports exact elementwise equality (shape included).
func (t *Tensor) Equal(o *Tensor) bool {
	if t.Rows != o.Rows || t.Cols != o.Cols {
		return false
	}
	for i, v := range t.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference.
func (t *Tensor) MaxAbsDiff(o *Tensor) float64 {
	if t.Rows != o.Rows || t.Cols != o.Cols {
		return math.Inf(1)
	}
	var max float64
	for i := range t.Data {
		d := math.Abs(float64(t.Data[i]) - float64(o.Data[i]))
		if d > max {
			max = d
		}
	}
	return max
}

// MatMul returns t (r x k) times w (k x c).
func MatMul(t, w *Tensor) *Tensor {
	if t.Cols != w.Rows {
		panic(fmt.Sprintf("tensor: matmul %dx%d by %dx%d", t.Rows, t.Cols, w.Rows, w.Cols))
	}
	out := New(t.Rows, w.Cols)
	for i := 0; i < t.Rows; i++ {
		for k := 0; k < t.Cols; k++ {
			a := t.At(i, k)
			if a == 0 {
				continue
			}
			row := w.Data[k*w.Cols : (k+1)*w.Cols]
			o := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, wv := range row {
				o[j] += a * wv
			}
		}
	}
	return out
}

// MatMulT returns t (r x k) times wᵀ where w is (c x k) — used for tied
// embedding heads.
func MatMulT(t, w *Tensor) *Tensor {
	if t.Cols != w.Cols {
		panic(fmt.Sprintf("tensor: matmulT %dx%d by %dx%d", t.Rows, t.Cols, w.Rows, w.Cols))
	}
	out := New(t.Rows, w.Rows)
	for i := 0; i < t.Rows; i++ {
		for j := 0; j < w.Rows; j++ {
			var s float32
			tr := t.Data[i*t.Cols : (i+1)*t.Cols]
			wr := w.Data[j*w.Cols : (j+1)*w.Cols]
			for k := range tr {
				s += tr[k] * wr[k]
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// AddBias adds a length-Cols bias vector to every row, in place.
func (t *Tensor) AddBias(bias []float32) *Tensor {
	if len(bias) != t.Cols {
		panic(fmt.Sprintf("tensor: bias %d for width %d", len(bias), t.Cols))
	}
	for i := 0; i < t.Rows; i++ {
		row := t.Data[i*t.Cols : (i+1)*t.Cols]
		for j := range row {
			row[j] += bias[j]
		}
	}
	return t
}

// Add returns t + o elementwise.
func Add(t, o *Tensor) *Tensor {
	if t.Rows != o.Rows || t.Cols != o.Cols {
		panic("tensor: add shape mismatch")
	}
	out := New(t.Rows, t.Cols)
	for i := range t.Data {
		out.Data[i] = t.Data[i] + o.Data[i]
	}
	return out
}

// GELU applies the tanh-approximated GELU elementwise, in place.
func (t *Tensor) GELU() *Tensor {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range t.Data {
		x := float64(v)
		t.Data[i] = float32(0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x))))
	}
	return t
}

// LayerNorm normalizes each row to zero mean / unit variance, then scales
// by gamma and shifts by beta.
func LayerNorm(t *Tensor, gamma, beta []float32, eps float64) *Tensor {
	if len(gamma) != t.Cols || len(beta) != t.Cols {
		panic("tensor: layernorm parameter width mismatch")
	}
	out := New(t.Rows, t.Cols)
	for i := 0; i < t.Rows; i++ {
		row := t.Data[i*t.Cols : (i+1)*t.Cols]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(t.Cols)
		var vr float64
		for _, v := range row {
			d := float64(v) - mean
			vr += d * d
		}
		vr /= float64(t.Cols)
		inv := 1 / math.Sqrt(vr+eps)
		o := out.Data[i*t.Cols : (i+1)*t.Cols]
		for j, v := range row {
			o[j] = float32((float64(v)-mean)*inv)*gamma[j] + beta[j]
		}
	}
	return out
}

// SoftmaxRows applies a numerically-stable softmax to each row, in place.
func (t *Tensor) SoftmaxRows() *Tensor {
	for i := 0; i < t.Rows; i++ {
		row := t.Data[i*t.Cols : (i+1)*t.Cols]
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - max))
			row[j] = float32(e)
			sum += e
		}
		for j := range row {
			row[j] = float32(float64(row[j]) / sum)
		}
	}
	return t
}

// EmbeddingLookup gathers rows of table (vocab x dim) for the given ids.
func EmbeddingLookup(table *Tensor, ids []int) *Tensor {
	out := New(len(ids), table.Cols)
	for i, id := range ids {
		if id < 0 || id >= table.Rows {
			panic(fmt.Sprintf("tensor: id %d outside vocab %d", id, table.Rows))
		}
		copy(out.Data[i*out.Cols:(i+1)*out.Cols], table.Data[id*table.Cols:(id+1)*table.Cols])
	}
	return out
}

// CausalSelfAttention computes masked multi-head attention from a fused
// qkv tensor (seq x 3*hidden), returning (seq x hidden). GPT-2 semantics:
// position i attends to positions <= i.
func CausalSelfAttention(qkv *Tensor, heads int) *Tensor {
	if qkv.Cols%3 != 0 {
		panic("tensor: qkv width not divisible by 3")
	}
	hidden := qkv.Cols / 3
	if hidden%heads != 0 {
		panic("tensor: hidden not divisible by heads")
	}
	hd := hidden / heads
	seq := qkv.Rows
	out := New(seq, hidden)
	scale := float32(1 / math.Sqrt(float64(hd)))
	for h := 0; h < heads; h++ {
		// Scores for this head, causally masked.
		scores := New(seq, seq)
		for i := 0; i < seq; i++ {
			for j := 0; j <= i; j++ {
				var s float32
				for k := 0; k < hd; k++ {
					q := qkv.At(i, h*hd+k)
					kk := qkv.At(j, hidden+h*hd+k)
					s += q * kk
				}
				scores.Set(i, j, s*scale)
			}
			for j := i + 1; j < seq; j++ {
				scores.Set(i, j, float32(math.Inf(-1)))
			}
		}
		scores.SoftmaxRows()
		for i := 0; i < seq; i++ {
			for j := 0; j <= i; j++ {
				a := scores.At(i, j)
				for k := 0; k < hd; k++ {
					v := qkv.At(j, 2*hidden+h*hd+k)
					out.Data[i*hidden+h*hd+k] += a * v
				}
			}
		}
	}
	return out
}
