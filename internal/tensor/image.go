package tensor

import (
	"fmt"
	"math"
)

// Image is a dense CHW float32 feature map (batch 1), the activation type
// of the CNN half of the functional runtime.
type Image struct {
	C, H, W int
	Data    []float32
}

// NewImage returns a zero image of the given shape.
func NewImage(c, h, w int) *Image {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("tensor: invalid image shape %dx%dx%d", c, h, w))
	}
	return &Image{C: c, H: h, W: w, Data: make([]float32, c*h*w)}
}

// At returns element (c, y, x).
func (im *Image) At(c, y, x int) float32 { return im.Data[(c*im.H+y)*im.W+x] }

// Set assigns element (c, y, x).
func (im *Image) Set(c, y, x int, v float32) { im.Data[(c*im.H+y)*im.W+x] = v }

// Clone deep-copies the image.
func (im *Image) Clone() *Image {
	c := NewImage(im.C, im.H, im.W)
	copy(c.Data, im.Data)
	return c
}

// Equal reports exact equality including shape.
func (im *Image) Equal(o *Image) bool {
	if im.C != o.C || im.H != o.H || im.W != o.W {
		return false
	}
	for i, v := range im.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// Conv2D applies a kxk convolution with the given stride and zero padding.
// Weights are laid out [outC][inC][k][k], followed by outC biases.
func Conv2D(in *Image, params []float32, outC, k, stride, pad int) *Image {
	if stride <= 0 || k <= 0 || pad < 0 {
		panic("tensor: bad conv geometry")
	}
	want := outC*in.C*k*k + outC
	if len(params) != want {
		panic(fmt.Sprintf("tensor: conv params %d, want %d", len(params), want))
	}
	outH := (in.H+2*pad-k)/stride + 1
	outW := (in.W+2*pad-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic("tensor: conv output collapses")
	}
	bias := params[outC*in.C*k*k:]
	out := NewImage(outC, outH, outW)
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				sum := bias[oc]
				for ic := 0; ic < in.C; ic++ {
					for ky := 0; ky < k; ky++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= in.H {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= in.W {
								continue
							}
							w := params[((oc*in.C+ic)*k+ky)*k+kx]
							sum += w * in.At(ic, iy, ix)
						}
					}
				}
				out.Set(oc, oy, ox, sum)
			}
		}
	}
	return out
}

// BatchNorm2D applies inference-mode batch normalization: params hold
// gamma, beta, running mean, running variance (each C floats).
func BatchNorm2D(in *Image, params []float32, eps float64) *Image {
	if len(params) != 4*in.C {
		panic(fmt.Sprintf("tensor: batchnorm params %d, want %d", len(params), 4*in.C))
	}
	gamma := params[:in.C]
	beta := params[in.C : 2*in.C]
	mean := params[2*in.C : 3*in.C]
	vr := params[3*in.C:]
	out := NewImage(in.C, in.H, in.W)
	for c := 0; c < in.C; c++ {
		inv := float32(1 / math.Sqrt(float64(vr[c])+eps))
		for i := c * in.H * in.W; i < (c+1)*in.H*in.W; i++ {
			out.Data[i] = (in.Data[i]-mean[c])*inv*gamma[c] + beta[c]
		}
	}
	return out
}

// ReLUImage applies max(0, x) elementwise, returning a new image.
func ReLUImage(in *Image) *Image {
	out := in.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// MaxPool2D applies kxk max pooling with the given stride (no padding).
func MaxPool2D(in *Image, k, stride int) *Image {
	if k <= 0 || stride <= 0 {
		panic("tensor: bad pool geometry")
	}
	outH := (in.H-k)/stride + 1
	outW := (in.W-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic("tensor: pool output collapses")
	}
	out := NewImage(in.C, outH, outW)
	for c := 0; c < in.C; c++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				max := float32(math.Inf(-1))
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						if v := in.At(c, oy*stride+ky, ox*stride+kx); v > max {
							max = v
						}
					}
				}
				out.Set(c, oy, ox, max)
			}
		}
	}
	return out
}

// GlobalAvgPool reduces each channel to its mean, producing a 1 x C tensor.
func GlobalAvgPool(in *Image) *Tensor {
	out := New(1, in.C)
	n := float64(in.H * in.W)
	for c := 0; c < in.C; c++ {
		var sum float64
		for i := c * in.H * in.W; i < (c+1)*in.H*in.W; i++ {
			sum += float64(in.Data[i])
		}
		out.Set(0, c, float32(sum/n))
	}
	return out
}

// AddImage returns the elementwise sum of two images (residual shortcut).
func AddImage(a, b *Image) *Image {
	if a.C != b.C || a.H != b.H || a.W != b.W {
		panic("tensor: image add shape mismatch")
	}
	out := NewImage(a.C, a.H, a.W)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}
