package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randTensor(rng *rand.Rand, r, c int) *Tensor {
	t := New(r, c)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

func TestNewAndAccessors(t *testing.T) {
	x := New(2, 3)
	x.Set(1, 2, 7)
	if x.At(1, 2) != 7 || x.At(0, 0) != 0 {
		t.Fatal("At/Set broken")
	}
	c := x.Clone()
	c.Set(0, 0, 9)
	if x.At(0, 0) != 0 {
		t.Fatal("Clone aliases storage")
	}
	if !x.Equal(x.Clone()) {
		t.Fatal("Equal broken")
	}
	if x.Equal(New(3, 2)) {
		t.Fatal("Equal ignores shape")
	}
}

func TestBadShapesPanic(t *testing.T) {
	cases := []func(){
		func() { New(0, 1) },
		func() { FromData(2, 2, []float32{1}) },
		func() { MatMul(New(2, 3), New(2, 3)) },
		func() { New(1, 2).AddBias([]float32{1}) },
		func() { Add(New(1, 2), New(2, 1)) },
		func() { LayerNorm(New(1, 2), []float32{1}, []float32{1, 2}, 1e-5) },
		func() { EmbeddingLookup(New(4, 2), []int{9}) },
		func() { CausalSelfAttention(New(2, 4), 1) },
		func() { CausalSelfAttention(New(2, 6), 4) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromData(2, 2, []float32{1, 2, 3, 4})
	b := FromData(2, 2, []float32{5, 6, 7, 8})
	got := MatMul(a, b)
	want := FromData(2, 2, []float32{19, 22, 43, 50})
	if !got.Equal(want) {
		t.Fatalf("got %v", got.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, 3, 4)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	if !MatMul(x, id).Equal(x) {
		t.Fatal("x * I != x")
	}
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randTensor(rng, 3, 5)
	w := randTensor(rng, 4, 5) // want x * w^T
	wT := New(5, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			wT.Set(j, i, w.At(i, j))
		}
	}
	got := MatMulT(x, w)
	want := MatMul(x, wT)
	if got.MaxAbsDiff(want) > 1e-5 {
		t.Fatalf("diff %g", got.MaxAbsDiff(want))
	}
}

func TestAddBiasAndAdd(t *testing.T) {
	x := FromData(2, 2, []float32{1, 2, 3, 4})
	x.AddBias([]float32{10, 20})
	want := FromData(2, 2, []float32{11, 22, 13, 24})
	if !x.Equal(want) {
		t.Fatalf("AddBias got %v", x.Data)
	}
	s := Add(x, x)
	if s.At(1, 1) != 48 {
		t.Fatalf("Add got %v", s.Data)
	}
}

func TestGELUKnownPoints(t *testing.T) {
	x := FromData(1, 3, []float32{0, 100, -100})
	x.GELU()
	if x.At(0, 0) != 0 {
		t.Errorf("GELU(0) = %v", x.At(0, 0))
	}
	if math.Abs(float64(x.At(0, 1))-100) > 1e-3 {
		t.Errorf("GELU(100) = %v, want ~100", x.At(0, 1))
	}
	if math.Abs(float64(x.At(0, 2))) > 1e-3 {
		t.Errorf("GELU(-100) = %v, want ~0", x.At(0, 2))
	}
}

// Property: LayerNorm with unit gamma / zero beta yields rows with ~zero
// mean and ~unit variance.
func TestPropertyLayerNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		cols := 4 + rng.Intn(60)
		x := randTensor(rng, 1+rng.Intn(6), cols)
		gamma := make([]float32, cols)
		beta := make([]float32, cols)
		for i := range gamma {
			gamma[i] = 1
		}
		out := LayerNorm(x, gamma, beta, 1e-6)
		for i := 0; i < out.Rows; i++ {
			var mean, vr float64
			for j := 0; j < cols; j++ {
				mean += float64(out.At(i, j))
			}
			mean /= float64(cols)
			for j := 0; j < cols; j++ {
				d := float64(out.At(i, j)) - mean
				vr += d * d
			}
			vr /= float64(cols)
			if math.Abs(mean) > 1e-4 || math.Abs(vr-1) > 1e-2 {
				t.Fatalf("trial %d row %d: mean %g var %g", trial, i, mean, vr)
			}
		}
	}
}

// Property: softmax rows are positive and sum to 1.
func TestPropertySoftmaxRows(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				raw[i] = 0
			}
			// Clamp to a sane activation range.
			if raw[i] > 50 {
				raw[i] = 50
			}
			if raw[i] < -50 {
				raw[i] = -50
			}
		}
		x := FromData(1, len(raw), raw)
		x.SoftmaxRows()
		var sum float64
		for _, v := range x.Data {
			if v < 0 {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEmbeddingLookup(t *testing.T) {
	table := FromData(3, 2, []float32{0, 1, 10, 11, 20, 21})
	out := EmbeddingLookup(table, []int{2, 0, 2})
	want := FromData(3, 2, []float32{20, 21, 0, 1, 20, 21})
	if !out.Equal(want) {
		t.Fatalf("got %v", out.Data)
	}
}

func TestCausalAttentionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const seq, hidden, heads = 5, 8, 2
	qkv := randTensor(rng, seq, 3*hidden)
	out := CausalSelfAttention(qkv, heads)
	if out.Rows != seq || out.Cols != hidden {
		t.Fatalf("shape %dx%d", out.Rows, out.Cols)
	}
	// Causality: row 0 attends only to itself, so its output equals v_0.
	for k := 0; k < hidden; k++ {
		if math.Abs(float64(out.At(0, k)-qkv.At(0, 2*hidden+k))) > 1e-5 {
			t.Fatalf("row 0 not equal to v0 at %d", k)
		}
	}
	// Changing a *future* token must not change an earlier row's output.
	qkv2 := qkv.Clone()
	for k := 0; k < 3*hidden; k++ {
		qkv2.Set(seq-1, k, qkv2.At(seq-1, k)+5)
	}
	out2 := CausalSelfAttention(qkv2, heads)
	for i := 0; i < seq-1; i++ {
		for k := 0; k < hidden; k++ {
			if out.At(i, k) != out2.At(i, k) {
				t.Fatalf("future token leaked into row %d", i)
			}
		}
	}
	// Changing a *past* token does change the last row.
	qkv3 := qkv.Clone()
	for k := 0; k < 3*hidden; k++ {
		qkv3.Set(0, k, qkv3.At(0, k)+5)
	}
	out3 := CausalSelfAttention(qkv3, heads)
	changed := false
	for k := 0; k < hidden; k++ {
		if out.At(seq-1, k) != out3.At(seq-1, k) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("past token had no influence on the last row")
	}
}
