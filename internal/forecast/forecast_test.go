package forecast

import (
	"testing"

	"deepplan/internal/sim"
)

// feedPeriodic drives a bursty arrival pattern: `base` arrivals per bucket,
// `burst` arrivals per bucket during the first `burstBuckets` buckets of
// every `periodBuckets`-bucket cycle, for `cycles` full cycles.
func feedPeriodic(f *Forecaster, window sim.Duration, periodBuckets, burstBuckets, base, burst, cycles int) sim.Time {
	var t sim.Time
	for c := 0; c < cycles; c++ {
		for b := 0; b < periodBuckets; b++ {
			n := base
			if b < burstBuckets {
				n = burst
			}
			start := sim.Time(int64(c*periodBuckets+b) * int64(window))
			for i := 0; i < n; i++ {
				at := start.Add(sim.Duration(i) * (window / sim.Duration(n+1)))
				f.Observe(at)
				if at > t {
					t = at
				}
			}
		}
	}
	return t
}

func TestRateSlidingWindow(t *testing.T) {
	f := New(Config{Window: sim.Second, Recent: 4})
	// 10 arrivals/s for 20 seconds.
	for i := 0; i < 200; i++ {
		f.Observe(sim.Time(int64(i) * int64(100*sim.Millisecond)))
	}
	got := f.Rate(sim.Time(20 * int64(sim.Second)))
	if got < 9.5 || got > 10.5 {
		t.Fatalf("Rate = %.2f, want ~10", got)
	}
}

func TestRateBeforeFirstBucketCompletes(t *testing.T) {
	f := New(Config{Window: 10 * sim.Second})
	for i := 0; i < 10; i++ {
		f.Observe(sim.Time(int64(i) * int64(100*sim.Millisecond)))
	}
	got := f.Rate(sim.Time(int64(sim.Second)))
	if got < 9 || got > 11 {
		t.Fatalf("early Rate = %.2f, want ~10 (total/elapsed fallback)", got)
	}
}

func TestRateDecaysAfterIdle(t *testing.T) {
	f := New(Config{Window: sim.Second, Recent: 3})
	for i := 0; i < 100; i++ {
		f.Observe(sim.Time(int64(i) * int64(100*sim.Millisecond)))
	}
	// 30 idle seconds later the window holds only empty buckets.
	if got := f.Rate(sim.Time(40 * int64(sim.Second))); got != 0 {
		t.Fatalf("Rate after idle = %.2f, want 0", got)
	}
}

func TestPeriodDetection(t *testing.T) {
	f := New(Config{Window: sim.Second})
	end := feedPeriodic(f, sim.Second, 20, 3, 1, 12, 6)
	period, score := f.Period(end)
	if period != 20*sim.Second {
		t.Fatalf("Period = %s (score %.2f), want 20s", period, score)
	}
	if score < 0.5 {
		t.Fatalf("score = %.2f, want >= 0.5", score)
	}
}

func TestPeriodAperiodicStream(t *testing.T) {
	f := New(Config{Window: sim.Second})
	// Constant rate: flat history must report no period.
	for i := 0; i < 600; i++ {
		f.Observe(sim.Time(int64(i) * int64(100*sim.Millisecond)))
	}
	if period, _ := f.Period(sim.Time(60 * int64(sim.Second))); period != 0 {
		t.Fatalf("Period on flat stream = %s, want 0", period)
	}
}

func TestForecastSeesUpcomingBurst(t *testing.T) {
	f := New(Config{Window: sim.Second})
	// 6 cycles of a 20s period with a 3s burst at each cycle start; the
	// feed ends just before cycle 7's burst.
	end := feedPeriodic(f, sim.Second, 20, 3, 1, 12, 6)
	now := sim.Time(120 * int64(sim.Second)) // cycle boundary: burst imminent
	_ = end
	p := f.Forecast(now, 5*sim.Second)
	if p.Period != 20*sim.Second {
		t.Fatalf("Forecast period = %s, want 20s", p.Period)
	}
	if p.Peak < 10 {
		t.Fatalf("Forecast peak = %.2f, want >= 10 (burst rate ~12/s)", p.Peak)
	}
	if p.Peak <= p.Rate {
		t.Fatalf("peak %.2f should exceed trough rate %.2f right before a burst", p.Peak, p.Rate)
	}
}

func TestForecastAperiodicFallsBackToRate(t *testing.T) {
	f := New(Config{Window: sim.Second})
	for i := 0; i < 300; i++ {
		f.Observe(sim.Time(int64(i) * int64(100*sim.Millisecond)))
	}
	p := f.Forecast(sim.Time(30*int64(sim.Second)), 10*sim.Second)
	if p.Period != 0 {
		t.Fatalf("period = %s, want 0", p.Period)
	}
	if p.Peak != p.Rate {
		t.Fatalf("aperiodic peak %.2f != rate %.2f", p.Peak, p.Rate)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Prediction {
		f := New(Config{Window: sim.Second})
		end := feedPeriodic(f, sim.Second, 17, 2, 1, 9, 7)
		return f.Forecast(end, 4*sim.Second)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical feeds diverged: %+v vs %+v", a, b)
	}
}

func TestAdvanceAcrossLongGap(t *testing.T) {
	f := New(Config{Window: sim.Second, Buckets: 16})
	for i := 0; i < 50; i++ {
		f.Observe(sim.Time(int64(i) * int64(200*sim.Millisecond)))
	}
	// Jump far beyond the ring: everything must be forgotten, no panic.
	far := sim.Time(int64(1000) * int64(sim.Second))
	f.Observe(far)
	if got := f.Rate(far.Add(2 * sim.Second)); got > 1 {
		t.Fatalf("Rate after long gap = %.2f, want ~0", got)
	}
	if f.Total() != 51 {
		t.Fatalf("Total = %d, want 51", f.Total())
	}
}

func TestObserveZeroAlloc(t *testing.T) {
	f := New(Config{Window: sim.Second})
	var i int64
	allocs := testing.AllocsPerRun(1000, func() {
		f.Observe(sim.Time(i * int64(10*sim.Millisecond)))
		i++
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f/op, want 0", allocs)
	}
}

func TestDefaultsApplied(t *testing.T) {
	f := New(Config{})
	if len(f.counts) != 512 {
		t.Fatalf("default Buckets = %d, want 512", len(f.counts))
	}
	if f.cfg.Window != 10*sim.Second {
		t.Fatalf("default Window = %s, want 10s", f.cfg.Window)
	}
}
