// Package forecast predicts per-model request arrival rates from the
// arrival stream alone, deterministically and allocation-free on the
// observation path.
//
// The forecaster is deliberately simple: a fixed ring of per-bucket
// arrival counts gives a sliding-window rate estimate, and an
// autocorrelation scan over the completed buckets detects the dominant
// periodicity. Both are tuned to the MAF-like workload classes in
// internal/workload — Spiky functions burst on a fixed schedule
// (burst-every 10–40 min) and Fluctuating functions swing sinusoidally
// (period 15–60 min) — so a seasonal-naive lookup ("what did the rate do
// one period ago?") captures exactly the structure those classes emit.
//
// Everything is integer bucket arithmetic plus float reductions in fixed
// index order, so two runs that feed the same arrival instants produce
// bit-identical predictions regardless of goroutine interleaving — the
// same byte-identity contract the rest of the simulator keeps.
package forecast

import (
	"fmt"

	"deepplan/internal/sim"
)

// Config tunes a Forecaster. The zero value is usable: every field has a
// default chosen for the cluster autoscaler's cadence.
type Config struct {
	// Window is the width of one counting bucket. Rate estimates and
	// period detection are quantized to this granularity. Default 10s.
	Window sim.Duration
	// Buckets is the ring length — how much history the forecaster keeps
	// (Window × Buckets of it). Default 512.
	Buckets int
	// Recent is how many completed buckets the sliding-window rate
	// estimate averages over. Default 3.
	Recent int
	// MinScore is the autocorrelation score a candidate period must reach
	// to be reported; below it the forecaster treats the stream as
	// aperiodic and forecasts the recent rate. Default 0.5.
	MinScore float64
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 10 * sim.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 512
	}
	if c.Recent <= 0 {
		c.Recent = 3
	}
	if c.MinScore <= 0 {
		c.MinScore = 0.5
	}
	return c
}

// Prediction is one forecast: the current smoothed rate, the peak rate
// expected within the requested horizon, and the detected periodicity
// (zero when the stream looks aperiodic).
type Prediction struct {
	// Rate is the sliding-window arrival rate estimate, requests/second.
	Rate float64
	// Peak is the highest bucket rate expected within the forecast
	// horizon: the seasonal-naive projection when a period is detected,
	// otherwise just Rate.
	Peak float64
	// Period is the detected dominant periodicity, quantized to Window;
	// zero when no period clears Config.MinScore.
	Period sim.Duration
	// Score is the autocorrelation coefficient of the detected period in
	// (MinScore, 1], or zero when Period is zero.
	Score float64
}

// Forecaster is a deterministic per-model arrival forecaster. Not safe
// for concurrent use; in the cluster it lives on the router goroutine,
// which under the parallel driver only runs at conservative barriers.
type Forecaster struct {
	cfg    Config
	counts []uint32
	cur    int64 // absolute index of the bucket currently being filled
	filled int64 // number of completed buckets ever (min(cur, Buckets) usable)
	total  uint64
}

// New builds a Forecaster; zero-valued Config fields take defaults.
func New(cfg Config) *Forecaster {
	cfg = cfg.withDefaults()
	return &Forecaster{cfg: cfg, counts: make([]uint32, cfg.Buckets)}
}

// Observe records one arrival at instant t. Amortized O(1) and 0
// allocs/op — the per-request hot path of the predictive autoscaler.
// Instants must be non-decreasing (simulation time never runs backward).
func (f *Forecaster) Observe(t sim.Time) {
	f.advance(f.bucket(t))
	f.counts[f.cur%int64(len(f.counts))]++
	f.total++
}

// Total returns the number of arrivals observed so far.
func (f *Forecaster) Total() uint64 { return f.total }

func (f *Forecaster) bucket(t sim.Time) int64 {
	return int64(t) / int64(f.cfg.Window)
}

// advance rotates the ring forward to bucket b, zeroing any buckets that
// were skipped. Bounded by the ring length no matter how far time jumped.
func (f *Forecaster) advance(b int64) {
	if b <= f.cur {
		return
	}
	n := int64(len(f.counts))
	if b-f.cur >= n {
		for i := range f.counts {
			f.counts[i] = 0
		}
		f.cur = b
		f.filled = n
		return
	}
	for f.cur < b {
		f.cur++
		f.counts[f.cur%n] = 0
	}
	if f.filled < f.cur {
		f.filled = f.cur
	}
	if f.filled > n {
		f.filled = n
	}
}

// at returns the count of the completed bucket `back` buckets before the
// current one (back=1 is the most recently completed bucket).
func (f *Forecaster) at(back int64) uint32 {
	n := int64(len(f.counts))
	return f.counts[((f.cur-back)%n+n)%n]
}

// completed returns how many completed buckets of history are usable.
func (f *Forecaster) completed() int64 {
	n := f.filled
	if n > f.cur {
		n = f.cur
	}
	if n > int64(len(f.counts))-1 {
		n = int64(len(f.counts)) - 1
	}
	return n
}

// Rate returns the sliding-window arrival rate (requests/second) as of
// now: the mean over the last Config.Recent completed buckets. Before the
// first bucket completes it falls back to total arrivals over elapsed
// time, so early ticks see a sane estimate instead of zero.
func (f *Forecaster) Rate(now sim.Time) float64 {
	f.advance(f.bucket(now))
	n := f.completed()
	if n == 0 {
		el := now.Seconds()
		if el <= 0 {
			return 0
		}
		return float64(f.total) / el
	}
	k := int64(f.cfg.Recent)
	if k > n {
		k = n
	}
	var sum float64
	for i := int64(1); i <= k; i++ {
		sum += float64(f.at(i))
	}
	return sum / (float64(k) * f.cfg.Window.Seconds())
}

// Period scans the completed history for its dominant periodicity via
// autocorrelation and returns it (quantized to Window) with its score.
// Returns (0, 0) when nothing clears Config.MinScore or fewer than two
// full cycles of history exist for every candidate lag.
func (f *Forecaster) Period(now sim.Time) (sim.Duration, float64) {
	f.advance(f.bucket(now))
	n := f.completed()
	if n < 8 {
		return 0, 0
	}
	// History oldest→newest in fixed order; all float reductions below
	// iterate the same way every run, keeping results bit-identical.
	var mean float64
	for i := n; i >= 1; i-- {
		mean += float64(f.at(i))
	}
	mean /= float64(n)
	var variance float64
	for i := n; i >= 1; i-- {
		d := float64(f.at(i)) - mean
		variance += d * d
	}
	if variance == 0 {
		return 0, 0 // flat history: constant-rate stream, no period
	}
	bestLag, bestScore := int64(0), 0.0
	maxLag := n / 2 // ≥ two full cycles of evidence for any reported lag
	for lag := int64(2); lag <= maxLag; lag++ {
		var num float64
		for i := n; i >= lag+1; i-- {
			num += (float64(f.at(i)) - mean) * (float64(f.at(i-lag)) - mean)
		}
		score := num / variance
		// Prefer the shortest lag that is essentially as good as the best
		// so harmonics (2×, 3× the true period) don't win.
		if score > bestScore*1.05 {
			bestLag, bestScore = lag, score
		}
	}
	if bestScore < f.cfg.MinScore {
		return 0, 0
	}
	return sim.Duration(bestLag) * f.cfg.Window, bestScore
}

// Forecast predicts the arrival rate over [now, now+horizon]. With a
// detected period it is seasonal-naive: the peak bucket rate one period
// ago across the same horizon-wide span, floored by the current rate.
// Without one it degrades to the sliding-window rate. Call it at
// controller cadence, not per arrival — it is O(history²) in the worst
// case, unlike Observe.
func (f *Forecaster) Forecast(now sim.Time, horizon sim.Duration) Prediction {
	rate := f.Rate(now)
	period, score := f.Period(now)
	p := Prediction{Rate: rate, Peak: rate, Period: period, Score: score}
	if period == 0 {
		return p
	}
	lag := int64(period / f.cfg.Window)
	span := int64((horizon + f.cfg.Window - 1) / f.cfg.Window)
	if span < 1 {
		span = 1
	}
	n := f.completed()
	sec := f.cfg.Window.Seconds()
	// Buckets [cur-lag, cur-lag+span) hold last cycle's view of the
	// horizon we are about to enter.
	for i := int64(0); i < span; i++ {
		back := lag - i
		if back < 1 || back > n {
			continue
		}
		if r := float64(f.at(back)) / sec; r > p.Peak {
			p.Peak = r
		}
	}
	return p
}

// String summarizes the forecaster state for debugging.
func (f *Forecaster) String() string {
	return fmt.Sprintf("forecast{window=%s buckets=%d observed=%d}",
		f.cfg.Window, len(f.counts), f.total)
}
