package costmodel

import (
	"testing"

	"deepplan/internal/dnn"
	"deepplan/internal/sim"
)

const (
	pcie3 = 11.7e9 // lane bandwidth of the p3.8xlarge preset
	copyO = 25 * sim.Microsecond
)

// execAnchors pin warm (in-GPU-memory) inference latency to the paper's
// measurements / consistent ranges. BERT-Base's 9.35 ms is quoted directly
// in §1 of the paper.
var execAnchors = []struct {
	name      string
	wantMs    float64
	tolerance float64 // relative
}{
	{"bert-base", 9.35, 0.10},
	{"resnet50", 7.5, 0.20},
	{"resnet101", 14, 0.25},
	{"bert-large", 26, 0.30},
	{"roberta-base", 9.6, 0.15},
	{"roberta-large", 26, 0.30},
	{"gpt2", 33, 0.20},
	{"gpt2-medium", 85, 0.30},
}

func TestWarmExecutionAnchors(t *testing.T) {
	p := Default()
	for _, a := range execAnchors {
		m, err := dnn.ByName(a.name)
		if err != nil {
			t.Fatal(err)
		}
		gotMs := p.ModelExecTime(m, 1).Seconds() * 1e3
		lo, hi := a.wantMs*(1-a.tolerance), a.wantMs*(1+a.tolerance)
		if gotMs < lo || gotMs > hi {
			t.Errorf("%s warm exec = %0.2f ms, want %0.2f ± %0.0f%%",
				a.name, gotMs, a.wantMs, a.tolerance*100)
		}
	}
}

func TestBERTBaseLoadAnchor(t *testing.T) {
	// §1: "loading a BERT-Base model takes 40ms".
	p := Default()
	m, _ := dnn.ByName("bert-base")
	got := p.ModelLoadTime(m, pcie3, copyO).Seconds() * 1e3
	if got < 38 || got < 0 || got > 43 {
		t.Errorf("BERT-Base load = %0.1f ms, want ~40", got)
	}
}

// Effective average PCIe bandwidth emerges from bytes / serial load time;
// Table 2's serial column reports 9.10 (ResNet-50) through 11.52 (GPT-2
// Medium) GB/s — small layers drag the average down via per-copy overhead.
func TestEffectiveBandwidthShape(t *testing.T) {
	p := Default()
	bw := func(name string) float64 {
		m, _ := dnn.ByName(name)
		return float64(m.TotalParamBytes()) / p.ModelLoadTime(m, pcie3, copyO).Seconds() / 1e9
	}
	resnet := bw("resnet50")
	bert := bw("bert-base")
	gptm := bw("gpt2-medium")
	if !(resnet < bert && bert < gptm) {
		t.Errorf("bandwidth ordering resnet(%0.2f) < bert(%0.2f) < gpt2-medium(%0.2f) violated",
			resnet, bert, gptm)
	}
	if resnet < 8.3 || resnet > 10.0 {
		t.Errorf("ResNet-50 effective bw = %0.2f GB/s, want ~9.1", resnet)
	}
	if bert < 10.3 || bert > 11.5 {
		t.Errorf("BERT-Base effective bw = %0.2f GB/s, want ~10.9", bert)
	}
	if gptm < 10.9 || gptm > 11.7 {
		t.Errorf("GPT-2 Medium effective bw = %0.2f GB/s, want ~11.5", gptm)
	}
}

// Table 1 of the paper: PCIe transaction counts for load vs DHA, at 64 B per
// transaction. The DHA gather for a large embedding is ~18.5k events; a
// medium (2.25 MiB) conv is ~66k; a small (2.25 MiB) FC is ~446k.
func TestTable1ReuseTraffic(t *testing.T) {
	p := Default()
	m, _ := dnn.ByName("bert-base")
	var word *dnn.Layer
	for i := range m.Layers {
		if m.Layers[i].Name == "embeddings.word" {
			word = &m.Layers[i]
		}
	}
	// 384 rows x 3072 B = 1.18 MB -> 18432 events (paper: 18,459).
	events := p.DHABytes(word, 1) / 64
	if events < 18000 || events > 19000 {
		t.Errorf("word embedding DHA events = %0.0f, want ~18.4k", events)
	}

	conv := &dnn.Layer{Kind: dnn.Conv2D, ParamBytes: 2359296} // 2.25 MiB
	if ev := p.DHABytes(conv, 1) / 64; ev < 60000 || ev > 72000 {
		t.Errorf("2.25 MiB conv DHA events = %0.0f, want ~66k", ev)
	}
	fc := &dnn.Layer{Kind: dnn.Linear, ParamBytes: 2359296}
	if ev := p.DHABytes(fc, 1) / 64; ev < 420000 || ev > 470000 {
		t.Errorf("2.25 MiB FC DHA events = %0.0f, want ~446k", ev)
	}
}

// §3.1's qualitative findings must hold layer-by-layer:
// embeddings and BatchNorm favour DHA; FC and LayerNorm favour load.
func TestDHAPreferenceByKind(t *testing.T) {
	p := Default()
	m, _ := dnn.ByName("bert-base")
	r, _ := dnn.ByName("resnet50")

	totalDHA := func(l *dnn.Layer) sim.Duration {
		return p.DHAExecNominal(l, 1, pcie3)
	}
	totalLoad := func(l *dnn.Layer) sim.Duration {
		return p.LoadTime(l, pcie3, copyO) + p.ComputeTime(l, 1)
	}

	for i := range m.Layers {
		l := &m.Layers[i]
		switch l.Kind {
		case dnn.Embedding:
			// Large tables favour DHA decisively; tiny tables (token-type:
			// 6 KB) do not, because uncached zero-copy re-reads rows per
			// token — the paper's Table 3b likewise loads small embeddings.
			if float64(l.ParamBytes) > p.DHABytes(l, 1) && totalDHA(l) >= totalLoad(l) {
				t.Errorf("embedding %s: DHA (%v) should beat load+exec (%v)",
					l.Name, totalDHA(l), totalLoad(l))
			}
		case dnn.Linear:
			if l.ParamBytes > 0 && totalDHA(l) <= totalLoad(l) {
				t.Errorf("FC %s: load+exec (%v) should beat DHA (%v)",
					l.Name, totalLoad(l), totalDHA(l))
			}
		case dnn.LayerNorm:
			// LayerNorm *execution* slows under DHA (the paper's point);
			// total time may still favour DHA because the load overhead
			// disappears, which is exactly why Algorithm 1 reasons about
			// stalls rather than naive totals.
			if p.DHAExecNominal(l, 1, pcie3) <= p.ComputeTime(l, 1) {
				t.Errorf("LN %s: DHA exec should exceed in-memory exec", l.Name)
			}
		}
	}
	for i := range r.Layers {
		l := &r.Layers[i]
		if l.Kind == dnn.BatchNorm {
			if totalDHA(l) >= totalLoad(l) {
				t.Errorf("BN %s: DHA should beat load+exec", l.Name)
			}
		}
	}
}

// Figure 5b: small/medium convs are close between the two methods; large
// convs favour load-then-execute clearly.
func TestConvCrossover(t *testing.T) {
	p := Default()
	mk := func(bytes int64, flops float64) *dnn.Layer {
		return &dnn.Layer{Kind: dnn.Conv2D, ParamBytes: bytes, FLOPs: flops}
	}
	// Medium conv: 2.25 MiB.
	med := mk(2359296, 2*2.36e6/4*196) // rough flops
	medDHA := p.DHAExecNominal(med, 1, pcie3)
	medLoad := p.LoadTime(med, pcie3, copyO) + p.ComputeTime(med, 1)
	ratio := float64(medDHA) / float64(medLoad)
	if ratio > 1.6 {
		t.Errorf("medium conv DHA/load ratio = %0.2f, should be close to 1", ratio)
	}
	// Large conv: 9 MiB. Gap should widen.
	big := mk(9437184, 2*9.44e6/4*196)
	bigDHA := p.DHAExecNominal(big, 1, pcie3)
	bigLoad := p.LoadTime(big, pcie3, copyO) + p.ComputeTime(big, 1)
	if float64(bigDHA)/float64(bigLoad) <= ratio {
		t.Error("large conv should favour load more than medium conv")
	}
}

func TestBatchScaling(t *testing.T) {
	p := Default()
	m, _ := dnn.ByName("bert-base")
	t1 := p.ModelExecTime(m, 1)
	t8 := p.ModelExecTime(m, 8)
	if t8 <= t1 {
		t.Fatal("batch 8 not slower than batch 1")
	}
	// Sub-linear latency growth per item: fixed overheads amortize.
	if float64(t8) >= 8*float64(t1) {
		t.Errorf("batch 8 exec %v >= 8x batch 1 %v: no amortization", t8, t1)
	}
	// Batch < 1 is clamped.
	if p.ComputeTime(&m.Layers[0], 0) != p.ComputeTime(&m.Layers[0], 1) {
		t.Error("batch 0 not clamped to 1")
	}
	if p.DHABytes(&m.Layers[0], 0) != p.DHABytes(&m.Layers[0], 1) {
		t.Error("DHABytes batch 0 not clamped")
	}
}

func TestParamlessLayersFreeToLoad(t *testing.T) {
	p := Default()
	l := &dnn.Layer{Kind: dnn.Activation, FLOPs: 1e6, ActBytes: 1e6}
	if p.LoadTime(l, pcie3, copyO) != 0 {
		t.Error("paramless layer has nonzero load time")
	}
	if p.DHABytes(l, 1) != 0 {
		t.Error("paramless layer has DHA traffic")
	}
}

func TestWorkspace(t *testing.T) {
	p := Default()
	m, _ := dnn.ByName("bert-base")
	w1 := p.Workspace(m, 1)
	w8 := p.Workspace(m, 8)
	if w1 < p.WorkspaceBase {
		t.Error("workspace below base")
	}
	if w8 <= w1 {
		t.Error("workspace should grow with batch")
	}
	if p.Workspace(m, 0) != w1 {
		t.Error("batch 0 not clamped")
	}
	// Instance-count anchor: BERT-Base params+workspace should allow ~25
	// instances on a 15 GiB usable V100 (paper: 100 instances on 4 GPUs).
	foot := m.TotalParamBytes() + w1
	per := int64(15.5 * (1 << 30) / float64(foot))
	if per < 23 || per > 28 {
		t.Errorf("BERT-Base instances per GPU = %d, want ~25 (footprint %d MB)",
			per, foot/1e6)
	}
}

func TestDHAExecNominalPCIeBound(t *testing.T) {
	p := Default()
	// A huge FC is PCIe-bound under DHA: latency tracks traffic/bandwidth.
	l := &dnn.Layer{Kind: dnn.Linear, ParamBytes: 100e6, FLOPs: 1e6}
	got := p.DHAExecNominal(l, 1, pcie3).Seconds()
	want := p.ReuseLinear * 100e6 / pcie3
	if got < want || got > want*1.1 {
		t.Errorf("PCIe-bound DHA exec = %gs, want ~%gs", got, want)
	}
}
