package costmodel

import (
	"testing"

	"deepplan/internal/dnn"
)

func TestDecodeIterTimeAmortizesAcrossSequences(t *testing.T) {
	p := Default()
	m, err := dnn.ByName("gpt2")
	if err != nil {
		t.Fatal(err)
	}
	one := p.DecodeIterTime(m, 1)
	eight := p.DecodeIterTime(m, 8)
	if one <= 0 {
		t.Fatalf("single-sequence iteration = %v", one)
	}
	if eight <= one {
		t.Fatalf("more sequences must cost more per iteration: 1→%v 8→%v", one, eight)
	}
	// The fixed cost (weight re-read + kernel overheads) dominates the
	// per-sequence marginal cost — that asymmetry is why continuous batching
	// wins: 8 sequences per iteration must cost far less than 8 iterations.
	if float64(eight) > 2*float64(one) {
		t.Fatalf("batching amortizes poorly: 1→%v 8→%v", one, eight)
	}
	if p.DecodeIterTime(m, 0) != one {
		t.Error("nSeqs < 1 not clamped to 1")
	}
}

func TestPrefillScale(t *testing.T) {
	m, err := dnn.ByName("gpt2")
	if err != nil {
		t.Fatal(err)
	}
	if s := PrefillScale(m, 0); s != 0 {
		t.Errorf("no prompt length should mean unscaled (0), got %v", s)
	}
	if s := PrefillScale(m, m.SeqLen); s != 1 {
		t.Errorf("full-sequence prompt should scale 1, got %v", s)
	}
	if s := PrefillScale(m, 4*m.SeqLen); s != 1 {
		t.Errorf("over-length prompt should clamp to 1, got %v", s)
	}
	half := PrefillScale(m, m.SeqLen/2)
	if half <= 0 || half >= 1 {
		t.Errorf("half-sequence prompt scale = %v, want in (0, 1)", half)
	}
}
