package costmodel

import (
	"deepplan/internal/dnn"
	"deepplan/internal/sim"
)

// Autoregressive decode costs. A prefill is the ordinary full-sequence
// forward pass the rest of the model already prices (ModelExecTime scaled by
// prompt length); a decode iteration runs the same layer stack for exactly
// one new token per active sequence. Two things distinguish it from 1/seq of
// a prefill:
//
//  1. the weights are re-read from HBM once per iteration regardless of how
//     many sequences share it — the classic memory-bound decode regime and
//     the entire reason iteration-level batching amortizes so well; and
//  2. kernel launch overheads are paid per layer per iteration, again
//     independent of batch width.
//
// Per-sequence work (FLOPs and activation traffic for one token) is the
// layer's full-sequence figure divided by the model's sequence length.

// DecodeIterTime returns the duration of one decode iteration that advances
// nSeqs sequences by one token each.
func (p *Params) DecodeIterTime(m *dnn.Model, nSeqs int) sim.Duration {
	if nSeqs < 1 {
		nSeqs = 1
	}
	seq := float64(m.SeqLen)
	if seq < 1 {
		seq = 1
	}
	n := float64(nSeqs)
	var t float64
	for i := range m.Layers {
		l := &m.Layers[i]
		t += float64(p.KernelOverhead[l.Kind])
		t += float64(l.ParamBytes) / p.MemBandwidth * 1e9 // weight re-read, batch-invariant
		t += n * (l.FLOPs / seq) / p.throughput(l.Kind) * 1e9
		t += n * (l.ActBytes / seq) / p.MemBandwidth * 1e9
	}
	return sim.Duration(t)
}

// PrefillScale maps a prompt length onto the fraction of the model's
// calibrated full-sequence forward pass it costs. Prompts longer than the
// model's sequence length are truncated to it, matching the serving layer's
// KV accounting. A non-positive prompt (single-shot workloads that never set
// token counts) returns 0, which callers treat as "unscaled".
func PrefillScale(m *dnn.Model, promptTokens int) float64 {
	if promptTokens <= 0 || m.SeqLen <= 0 {
		return 0
	}
	if promptTokens >= m.SeqLen {
		return 1
	}
	return float64(promptTokens) / float64(m.SeqLen)
}
