package deepplan_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus micro-benchmarks on the simulation substrate's
// hot paths. The per-figure benchmarks run the same code that
// cmd/deepplan-bench uses (serving figures in Quick mode to keep
// `go test -bench=.` tractable); EXPERIMENTS.md records the full-scale runs.

import (
	"io"
	"testing"

	"deepplan"
	"deepplan/internal/dnn"
	"deepplan/internal/experiments"
	"deepplan/internal/forecast"
	"deepplan/internal/forward"
	"deepplan/internal/hostmem"
	"deepplan/internal/monitor"
	"deepplan/internal/sim"
	"deepplan/internal/simnet"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(io.Discard, experiments.Options{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-figure/table benchmarks (paper evaluation order).

func BenchmarkFigure2StallDecomposition(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFigure5LayerMicro(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkTable1PCIeEvents(b *testing.B)           { benchExperiment(b, "table1") }
func BenchmarkFigure6Transmission(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkTable2PCIeBandwidth(b *testing.B)        { benchExperiment(b, "table2") }
func BenchmarkFigure11Speedups(b *testing.B)           { benchExperiment(b, "fig11") }
func BenchmarkTable3PlanExcerpts(b *testing.B)         { benchExperiment(b, "table3") }
func BenchmarkTable4Interference(b *testing.B)         { benchExperiment(b, "table4") }
func BenchmarkFigure12Batching(b *testing.B)           { benchExperiment(b, "fig12") }
func BenchmarkTable5ProfilingCost(b *testing.B)        { benchExperiment(b, "table5") }
func BenchmarkFigure13ServingSweep(b *testing.B)       { benchExperiment(b, "fig13") }
func BenchmarkFigure14ServingLargeModels(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFigure15TraceReplay(b *testing.B)        { benchExperiment(b, "fig15") }
func BenchmarkFigure16PCIe4(b *testing.B)              { benchExperiment(b, "fig16") }

// Extension (§7 future work) and ablation benchmarks.

func BenchmarkExtLargeModel(b *testing.B)       { benchExperiment(b, "ext-large") }
func BenchmarkExtMixtureOfExperts(b *testing.B) { benchExperiment(b, "ext-moe") }
func BenchmarkAblatePruning(b *testing.B)       { benchExperiment(b, "ablate-prune") }
func BenchmarkAblatePartitions(b *testing.B)    { benchExperiment(b, "ablate-parts") }
func BenchmarkAblatePCIeGen(b *testing.B)       { benchExperiment(b, "ablate-pcie") }
func BenchmarkAblateNVLink(b *testing.B)        { benchExperiment(b, "ablate-nvlink") }

// Substrate micro-benchmarks.

// BenchmarkProfileBERTBase measures the one-time profiling pre-run.
func BenchmarkProfileBERTBase(b *testing.B) {
	platform := deepplan.NewP38xlarge()
	m, err := deepplan.LoadModel("bert-base")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := platform.Profile(m, deepplan.ProfileOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanAlgorithm1 measures plan generation (Algorithm 1 + pruning)
// for the deepest model.
func BenchmarkPlanAlgorithm1(b *testing.B) {
	platform := deepplan.NewP38xlarge()
	m, err := deepplan.LoadModel("resnet101")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := platform.Profile(m, deepplan.ProfileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := platform.Plan(prof, deepplan.ModePTDHA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdStartSimulation measures one full event-simulated PT+DHA
// cold start end to end.
func BenchmarkColdStartSimulation(b *testing.B) {
	platform := deepplan.NewP38xlarge()
	m, err := deepplan.LoadModel("bert-base")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := platform.Profile(m, deepplan.ProfileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	pln, err := platform.Plan(prof, deepplan.ModePTDHA)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := platform.Execute(m, pln, deepplan.ExecuteOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmInferenceSimulation measures the coalesced warm path the
// serving system leans on for million-request traces.
func BenchmarkWarmInferenceSimulation(b *testing.B) {
	platform := deepplan.NewP38xlarge()
	m, err := deepplan.LoadModel("bert-base")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := platform.Profile(m, deepplan.ProfileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	pln, err := platform.Plan(prof, deepplan.ModeDHA)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := platform.Execute(m, pln, deepplan.ExecuteOptions{Warm: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimnetFairShare measures max-min reallocation under churn:
// staggered flows arriving and completing across a shared uplink.
func BenchmarkSimnetFairShare(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New()
		n := simnet.New(s)
		up := simnet.NewLink("uplink", 12e9)
		lanes := []*simnet.Link{
			simnet.NewLink("l0", 11e9), simnet.NewLink("l1", 11e9),
		}
		for f := 0; f < 64; f++ {
			f := f
			s.At(sim.Time(f)*sim.Time(sim.Millisecond), func() {
				n.StartFlow("f", []*simnet.Link{up, lanes[f%2]}, 50e6, nil)
			})
		}
		s.Run()
	}
}

// BenchmarkMaxMinRates isolates the progressive-filling rate computation:
// 64 persistent flows over a two-switch shared-uplink topology (the
// p3.8xlarge shape), re-triggering reallocation by starting and aborting a
// probe flow. Steady-state allocs/op is the headline number: the epoch-
// stamped link scratch state keeps it at the single probe-Flow allocation.
func BenchmarkMaxMinRates(b *testing.B) {
	s := sim.New()
	n := simnet.New(s)
	uplinks := []*simnet.Link{
		simnet.NewLink("sw0-up", 12e9), simnet.NewLink("sw1-up", 12e9),
	}
	paths := make([][]*simnet.Link, 4)
	for i := range paths {
		lane := simnet.NewLink("lane", 11e9)
		paths[i] = []*simnet.Link{uplinks[i/2], lane}
	}
	// Persistent background load: 64 flows that never complete.
	for f := 0; f < 64; f++ {
		n.StartFlow("bg", paths[f%4], 1e18, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe := n.StartFlow("probe", paths[i%4], 1e18, nil)
		n.Abort(probe)
	}
}

// BenchmarkFunctionalForwardPass measures the functional tensor runtime on
// the tiny GPT model the correctness tests execute.
func BenchmarkFunctionalForwardPass(b *testing.B) {
	m := dnn.TinyGPT(97, 16, 24, 2, 48, 16, 4)
	w, err := forward.InitWeights(m, 1)
	if err != nil {
		b.Fatal(err)
	}
	ids := []int{5, 17, 3, 96, 0, 42, 7, 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forward.Run(m, w, ids); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServingThousandRequests measures the serving system's event
// throughput at the Figure 13 operating point.
func BenchmarkServingThousandRequests(b *testing.B) {
	benchServingThousand(b, false, false)
}

// BenchmarkServingThousandRequestsTraced repeats the same operating point
// with the trace recorder and telemetry attached, so the observation
// overhead stays an explicit, tracked number next to the untraced baseline.
func BenchmarkServingThousandRequestsTraced(b *testing.B) {
	benchServingThousand(b, true, false)
}

// BenchmarkServingThousandRequestsMonitored attaches the dimensional
// metrics registry instead: every request updates per-class counters and
// latency histograms, so the monitoring hot path's cost is tracked next to
// the unobserved baseline the same way tracing's is.
func BenchmarkServingThousandRequestsMonitored(b *testing.B) {
	benchServingThousand(b, false, true)
}

func benchServingThousand(b *testing.B, traced, monitored bool) {
	b.Helper()
	platform := deepplan.NewP38xlarge()
	m, err := deepplan.LoadModel("bert-base")
	if err != nil {
		b.Fatal(err)
	}
	reqs := deepplan.PoissonWorkload(42, 100, 1000, 140)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := deepplan.ServerOptions{Policy: deepplan.ModePTDHA}
		if traced {
			opts.Trace = deepplan.NewTraceRecorder()
			opts.Telemetry = true
		}
		if monitored {
			opts.Monitor = deepplan.NewMetricsRegistry()
		}
		srv, err := platform.NewServer(opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Deploy(m, 140); err != nil {
			b.Fatal(err)
		}
		srv.Warmup()
		if _, err := srv.Run(reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCluster replays a Poisson workload over an n-node cluster at the
// least-outstanding routing point, one BERT-Base replica per node. The
// parallel flag selects the per-node event-queue driver; both variants are
// benchmarked so the conservative-lookahead synchronization cost (and any
// speedup on multi-core hosts) stays a tracked number.
func benchCluster(b *testing.B, nodes int, parallel bool) {
	b.Helper()
	platform := deepplan.NewP38xlarge()
	m, err := deepplan.LoadModel("bert-base")
	if err != nil {
		b.Fatal(err)
	}
	reqs := deepplan.ClusterRequests("BERT-Base",
		deepplan.PoissonWorkload(7, 25*float64(nodes), 2000, nodes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := platform.NewCluster(deepplan.ClusterOptions{
			Nodes:    nodes,
			Route:    deepplan.RouteLeastOutstanding,
			Parallel: parallel,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Deploy(m, nodes); err != nil {
			b.Fatal(err)
		}
		c.Warmup()
		if _, err := c.Run(reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterSixteenNodes is the ISSUE's headline configuration: the
// fig-cluster node count on the shared serial clock.
func BenchmarkClusterSixteenNodes(b *testing.B) { benchCluster(b, 16, false) }

// BenchmarkClusterSixteenNodesParallel runs the same configuration with
// per-node event queues on goroutines (ClusterOptions.Parallel).
func BenchmarkClusterSixteenNodesParallel(b *testing.B) { benchCluster(b, 16, true) }

// BenchmarkClusterHundredNodes scales the node count past the paper's
// largest configuration to expose super-linear router costs.
func BenchmarkClusterHundredNodes(b *testing.B) { benchCluster(b, 100, false) }

// BenchmarkClusterHundredNodesParallel is the parallel-driver variant.
func BenchmarkClusterHundredNodesParallel(b *testing.B) { benchCluster(b, 100, true) }

// BenchmarkHistogramRecord measures the monitoring hot path: one histogram
// observation on a pre-resolved handle (bucket index via float-bit
// arithmetic, no label formatting, no map lookups). Steady state must stay
// at 0 allocs/op — the handle and its bucket slots are resolved at setup.
func BenchmarkHistogramRecord(b *testing.B) {
	reg := monitor.New()
	h := reg.Histogram("bench_latency_seconds", "bench", monitor.DefaultLatencyBuckets(),
		"class", "warm")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000+1) * 1e-4)
	}
}

// TestDisabledTracingAddsNoAllocations pins the zero-overhead-when-disabled
// contract at the API boundary: every recorder entry point on a nil
// *TraceRecorder — the disabled state the serving hot path sees — must not
// allocate.
func TestDisabledTracingAddsNoAllocations(t *testing.T) {
	var rec *deepplan.TraceRecorder
	allocs := testing.AllocsPerRun(100, func() {
		rec.Span(0, 0, "exec", "layer", 0, 10)
		rec.Instant(0, 4, "serving", "evict", 5)
		rec.Counter(0, "gpu mem (MiB)", 5, 128)
		rec.AsyncBegin(0, "request", "bert", rec.NextID(), 0, nil)
		rec.AsyncEnd(0, "request", "bert", 0, 10)
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocated %.1f per run; want 0", allocs)
	}
}

// BenchmarkZooPinnedCacheLookup measures the host-cache tier's hot path: a
// Lookup hit on a resident entry plus the recency Touch that follows it on
// every cold dispatch. Steady state must stay at 0 allocs/op — the entry
// handle is resolved once and hit/miss accounting is plain integer
// arithmetic (gated by scripts/bench_compare.sh).
func BenchmarkZooPinnedCacheLookup(b *testing.B) {
	c, err := hostmem.NewCache(1<<30, hostmem.PolicyLRU)
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, 64)
	for i := range names {
		names[i] = "model-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if _, _, err := c.Admit(names[i], 1<<20, sim.Millisecond, 0.5, sim.Time(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, ok := c.Lookup(names[i%len(names)])
		if !ok {
			b.Fatal("miss on resident entry")
		}
		c.Touch(e, sim.Time(i))
	}
}

// BenchmarkForecastObserve measures the predictive autoscaler's per-request
// hot path: one arrival observation on the bucket ring, advancing virtual
// time so ring rotation (the amortized part) is included. Steady state must
// stay at 0 allocs/op — the ring is sized at construction and Observe is
// integer bucket arithmetic only (gated by scripts/bench_compare.sh).
func BenchmarkForecastObserve(b *testing.B) {
	f := forecast.New(forecast.Config{Window: sim.Second})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Observe(sim.Time(i) * sim.Time(sim.Millisecond))
	}
}

// TestForecastObserveAddsNoAllocations pins the allocation-free contract
// the benchmark above measures, so it fails fast under plain `go test`
// instead of only under the bench gate.
func TestForecastObserveAddsNoAllocations(t *testing.T) {
	f := forecast.New(forecast.Config{Window: sim.Second})
	now := sim.Time(0)
	allocs := testing.AllocsPerRun(1000, func() {
		now += sim.Time(sim.Millisecond)
		f.Observe(now)
	})
	if allocs != 0 {
		t.Fatalf("forecast.Observe allocated %.1f per run; want 0", allocs)
	}
}

// TestZooCacheLookupAddsNoAllocations pins the allocation-free contract the
// benchmark above measures, so it fails fast under plain `go test` instead
// of only under the bench gate.
func TestZooCacheLookupAddsNoAllocations(t *testing.T) {
	c, err := hostmem.NewCache(1<<30, hostmem.PolicyCostAware)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Admit("m", 1<<20, sim.Millisecond, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	allocs := testing.AllocsPerRun(100, func() {
		now++
		e, ok := c.Lookup("m")
		if !ok {
			t.Fatal("miss on resident entry")
		}
		c.Touch(e, now)
		c.Peek("m")
	})
	if allocs != 0 {
		t.Fatalf("cache lookup allocated %.1f per run; want 0", allocs)
	}
}
