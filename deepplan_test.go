package deepplan_test

import (
	"strings"
	"testing"

	"deepplan"
)

func TestModelsZoo(t *testing.T) {
	names := deepplan.Models()
	if len(names) < 8 {
		t.Fatalf("Models() = %d entries, want >= 8", len(names))
	}
	for _, n := range names {
		m, err := deepplan.LoadModel(n)
		if err != nil {
			t.Fatal(err)
		}
		if m.TotalParamBytes() <= 0 {
			t.Fatalf("%s: no parameters", n)
		}
	}
	if _, err := deepplan.LoadModel("vgg16"); err == nil {
		t.Fatal("unknown model accepted")
	}
	order := deepplan.EvaluationModels()
	if len(order) != 8 || order[0].Name != "ResNet-50" {
		t.Fatalf("EvaluationModels order wrong: %v", order[0].Name)
	}
}

func TestModes(t *testing.T) {
	modes := deepplan.Modes()
	if len(modes) != 5 || modes[0] != deepplan.ModeBaseline || modes[4] != deepplan.ModePTDHA {
		t.Fatalf("Modes() = %v", modes)
	}
}

func TestProfilePlanExecuteRoundTrip(t *testing.T) {
	platform := deepplan.NewP38xlarge()
	m, err := deepplan.LoadModel("bert-base")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := platform.Profile(m, deepplan.ProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var last deepplan.Duration
	for _, mode := range deepplan.Modes() {
		pln, err := platform.Plan(prof, mode)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if err := pln.Validate(m); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		res, err := platform.Execute(m, pln, deepplan.ExecuteOptions{})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Latency() <= 0 {
			t.Fatalf("%s: nonpositive latency", mode)
		}
		// The paper's ordering: every successive mode is at least as fast.
		if last > 0 && res.Latency() > last+last/20 {
			t.Errorf("%s (%v) much slower than previous mode (%v)", mode, res.Latency(), last)
		}
		last = res.Latency()
	}
}

func TestPredictTracksExecute(t *testing.T) {
	platform := deepplan.NewP38xlarge()
	m, _ := deepplan.LoadModel("roberta-base")
	prof, err := platform.Profile(m, deepplan.ProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pln, err := platform.Plan(prof, deepplan.ModePTDHA)
	if err != nil {
		t.Fatal(err)
	}
	pred := platform.PredictLatency(prof, pln).Seconds()
	res, err := platform.Execute(m, pln, deepplan.ExecuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Latency().Seconds()
	if got < pred*0.85 || got > pred*1.2 {
		t.Fatalf("Execute %.3fms far from Predict %.3fms", got*1e3, pred*1e3)
	}
}

func TestUnknownModeRejected(t *testing.T) {
	platform := deepplan.NewP38xlarge()
	m, _ := deepplan.LoadModel("resnet50")
	prof, _ := platform.Profile(m, deepplan.ProfileOptions{})
	if _, err := platform.Plan(prof, "warp-drive"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestNewPlatformValidation(t *testing.T) {
	if _, err := deepplan.NewPlatform("x", nil, nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	p, err := deepplan.NewPlatform("custom", deepplan.NewP38xlarge().Topology, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "custom" || p.Cost() == nil || p.Topology() == nil {
		t.Fatal("custom platform incomplete")
	}
}

func TestPlatformAccessors(t *testing.T) {
	p := deepplan.NewDualA5000()
	if p.Name() != "dual-a5000-pcie4" {
		t.Fatalf("Name = %q", p.Name())
	}
	if p.Topology().NumGPUs() != 2 {
		t.Fatalf("NumGPUs = %d", p.Topology().NumGPUs())
	}
	// Fresh topology per call (no shared simulation state).
	if p.Topology() == p.Topology() {
		t.Fatal("Topology() returned a shared instance")
	}
}

func TestServerFacade(t *testing.T) {
	platform := deepplan.NewP38xlarge()
	srv, err := platform.NewServer(deepplan.ServerOptions{Policy: deepplan.ModeDHA})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := deepplan.LoadModel("bert-base")
	if err := srv.Deploy(m, 12); err != nil {
		t.Fatal(err)
	}
	srv.Warmup()
	rep, err := srv.Run(deepplan.PoissonWorkload(1, 40, 200, 12))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 200 || rep.Goodput <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	// Default policy when empty is PT+DHA; plain PT is not a serving policy.
	if _, err := platform.NewServer(deepplan.ServerOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := platform.NewServer(deepplan.ServerOptions{Policy: deepplan.ModePT}); err == nil {
		t.Fatal("plain PT accepted as serving policy")
	}
}

func TestWorkloadFacades(t *testing.T) {
	reqs := deepplan.PoissonWorkload(3, 50, 100, 4)
	if len(reqs) != 100 {
		t.Fatalf("Poisson = %d requests", len(reqs))
	}
	tr, err := deepplan.MAFWorkload(3, 60*1e9, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Fatal("empty MAF workload")
	}
	if _, err := deepplan.MAFWorkload(3, 0, 20, 10); err == nil {
		t.Fatal("invalid MAF spec accepted")
	}
}

func TestLargeModelFacades(t *testing.T) {
	platform := deepplan.NewP38xlarge()
	m, err := deepplan.LoadModel("synthetic-13b")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := platform.Profile(m, deepplan.ProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(14) << 30

	dhaPlan, err := platform.PlanLargeModel(prof, budget)
	if err != nil {
		t.Fatal(err)
	}
	if dhaPlan.ResidentBytes(m) > budget {
		t.Fatal("PlanLargeModel exceeded the budget")
	}

	strPlan, mask, err := platform.PlanStreaming(prof, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(mask) != m.NumLayers() {
		t.Fatalf("mask length %d", len(mask))
	}
	res, err := platform.Execute(m, strPlan, deepplan.ExecuteOptions{ResidentMask: mask})
	if err != nil {
		t.Fatal(err)
	}
	// Per-inference streaming latency must beat the all-DHA plan clearly.
	dhaRes, err := platform.Execute(m, dhaPlan, deepplan.ExecuteOptions{Warm: true})
	if err != nil {
		t.Fatal(err)
	}
	if float64(dhaRes.Latency()) < 3*float64(res.Latency()) {
		t.Fatalf("streaming %v not clearly faster than all-DHA %v",
			res.Latency(), dhaRes.Latency())
	}
}

func TestPlanJSONThroughFacade(t *testing.T) {
	platform := deepplan.NewP38xlarge()
	m, _ := deepplan.LoadModel("gpt2")
	prof, _ := platform.Profile(m, deepplan.ProfileOptions{})
	pln, _ := platform.Plan(prof, deepplan.ModeDHA)
	b, err := pln.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"mode": "dha"`) {
		t.Fatal("serialized plan missing mode")
	}
}

func TestLLMFacade(t *testing.T) {
	platform := deepplan.NewP38xlarge()
	srv, err := platform.NewServer(deepplan.ServerOptions{
		Policy: deepplan.ModeDHA,
		LLM:    deepplan.LLMOptions{Enabled: true, Batching: deepplan.LLMBatchContinuous},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := deepplan.LoadModel("gpt2")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Deploy(m, 4); err != nil {
		t.Fatal(err)
	}
	srv.Warmup()
	reqs := deepplan.AssignTokens(deepplan.PoissonWorkload(7, 60, 120, 4), 7, 128, 16)
	for _, r := range reqs {
		if r.PromptTokens < 1 || r.OutputTokens < 1 {
			t.Fatalf("AssignTokens left a request without tokens: %+v", r)
		}
	}
	rep, err := srv.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 120 || rep.Shed != 0 {
		t.Fatalf("report = %+v", rep)
	}
	ls := srv.LLMStats()
	if ls.TokensGenerated <= 120 {
		t.Fatalf("decode path not exercised: %d tokens", ls.TokensGenerated)
	}
	// Static batching is the only other accepted discipline.
	if _, err := platform.NewServer(deepplan.ServerOptions{
		LLM: deepplan.LLMOptions{Enabled: true, Batching: "bogus"},
	}); err == nil {
		t.Fatal("unknown batching discipline accepted")
	}
	// Prefill/decode disaggregation threads through the cluster facade too.
	c, err := platform.NewCluster(deepplan.ClusterOptions{
		Nodes: 2,
		LLM:   deepplan.LLMOptions{Enabled: true, PrefillDecode: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(m, 4); err != nil {
		t.Fatal(err)
	}
	c.Warmup()
	creqs := deepplan.ClusterRequests("GPT-2", reqs)
	for i, cr := range creqs {
		if cr.PromptTokens != reqs[i].PromptTokens || cr.OutputTokens != reqs[i].OutputTokens {
			t.Fatal("ClusterRequests dropped token annotations")
		}
	}
	crep, err := c.Run(creqs)
	if err != nil {
		t.Fatal(err)
	}
	if crep.TokensGenerated <= crep.Requests || crep.TTFTP99 <= 0 {
		t.Fatalf("cluster LLM report = %+v", crep)
	}
}
